// Package power is the McPAT-equivalent power and energy model.
//
// It provides (a) per-instruction core dynamic energy and per-core leakage
// power with voltage scaling, (b) per-access cache energies derived from
// the package tech array models plus McPAT-style peripheral/interconnect
// ("wire") energy, (c) a chip-level leakage aggregator, and (d) the
// energy Meter the simulator uses to integrate power over time.
//
// # Calibration
//
// Absolute constants are pinned to the paper's Figure 1 anchors for a
// 64-core CMP with the medium cache hierarchy:
//
//   - at nominal voltage (1.0 V, 2.5 GHz) dynamic power is ~60% of chip
//     power, with core leakage ~26% and the caches contributing roughly
//     equal leakage and dynamic shares;
//   - at near-threshold (cores 0.4 V / ~500 MHz, SRAM caches 0.65 V)
//     leakage dominates at ~75% of chip power, with caches responsible
//     for about half of that leakage.
//
// Scaling laws: dynamic energy scales with Vdd^2; cache array leakage is
// linear in Vdd (both laws are exactly what Table III's value pairs
// imply); core logic leakage follows V * e^(k(V-1)) — linear-in-V with a
// DIBL correction calibrated so the NT/HP energy relationship
// of Figure 9 (HP-SRAM-CMP ~ +40% energy vs the NT baseline) holds.
package power

import (
	"encoding/json"
	"fmt"
	"math"

	"respin/internal/config"
	"respin/internal/tech"
)

// Params holds the calibration constants of the power model.
type Params struct {
	// CoreDynEPIpJ is the dynamic energy per committed instruction of
	// one core at nominal voltage (pJ). Scales with Vdd^2.
	CoreDynEPIpJ float64
	// CoreLeakWNominal is the leakage power of one core at nominal
	// voltage (W).
	CoreLeakWNominal float64
	// CoreLeakDIBLK is the DIBL correction exponent k in
	// leak(V) = leak(1V) * V * e^(k(V-1)).
	CoreLeakDIBLK float64
	// GatedLeakFraction is the residual leakage of a power-gated core
	// relative to its active leakage.
	GatedLeakFraction float64
	// WireL1PrivatePJ, WireL1SharedPJ, WireL2PJ, WireL3PJ are the
	// McPAT-style peripheral + interconnect energies added to each
	// array access at the respective level, at nominal voltage
	// (Vdd^2-scaled). Shared L1s span a whole cluster and pay slightly
	// longer wires.
	WireL1PrivatePJ, WireL1SharedPJ, WireL2PJ, WireL3PJ float64
	// LevelShifterPJ is the energy of one voltage-domain crossing.
	LevelShifterPJ float64
	// StaticIPC is the per-core IPC assumed by the analytic
	// EstimateBreakdown (Figure 1 is a modeled, not simulated, figure).
	StaticIPC float64
	// L1IAccessPerInstr and L1DAccessPerInstr are the analytic access
	// rates used by EstimateBreakdown.
	L1IAccessPerInstr, L1DAccessPerInstr float64
}

// DefaultParams returns the Figure 1 calibration.
func DefaultParams() Params {
	return Params{
		CoreDynEPIpJ:      667,
		CoreLeakWNominal:  1.131,
		CoreLeakDIBLK:     0.578,
		GatedLeakFraction: 0.05,
		WireL1PrivatePJ:   180,
		WireL1SharedPJ:    300,
		WireL2PJ:          500,
		WireL3PJ:          1000,
		LevelShifterPJ:    1.2,
		StaticIPC:         1.2,
		L1IAccessPerInstr: 0.50,
		L1DAccessPerInstr: 0.35,
	}
}

// DynScale returns the dynamic-energy scaling factor for a supply
// voltage, relative to nominal: (V/Vnom)^2.
func DynScale(vdd float64) float64 {
	r := vdd / config.NominalVdd
	return r * r
}

// CoreLeakWatts returns one core's leakage power at the given supply.
func (p Params) CoreLeakWatts(vdd float64) float64 {
	return p.CoreLeakWNominal * vdd / config.NominalVdd *
		math.Exp(p.CoreLeakDIBLK*(vdd-config.NominalVdd))
}

// CoreEPIpJ returns one core's dynamic energy per instruction at the
// given supply.
func (p Params) CoreEPIpJ(vdd float64) float64 {
	return p.CoreDynEPIpJ * DynScale(vdd)
}

// CacheEnergies holds per-access dynamic energies (pJ) for every level
// at the configuration's cache voltage, wire energy included.
type CacheEnergies struct {
	L1IRead, L1IWrite float64
	L1DRead, L1DWrite float64
	L2Read, L2Write   float64
	L3Read, L3Write   float64
}

// CacheLatencies holds array access latencies in whole cache cycles.
type CacheLatencies struct {
	L1Read, L1Write int
	L2Read, L2Write int
	L3Read, L3Write int
}

// ArrayLevel indexes a cache array of the hierarchy in the flattened
// per-(array, access-kind) lookup tables.
type ArrayLevel int

// Array levels.
const (
	ArrayL1I ArrayLevel = iota
	ArrayL1D
	ArrayL2
	ArrayL3
	numArrayLevels
)

// AccessKind distinguishes reads from writes in the lookup tables.
type AccessKind int

// Access kinds.
const (
	ReadAccess AccessKind = iota
	WriteAccess
	numAccessKinds
)

// Chip bundles everything the simulator needs to turn events into energy
// for one configuration: leakage powers, per-access energies and
// latencies at the configured rails.
type Chip struct {
	Params Params
	Config config.Config
	// CoreLeakW is the leakage of one active core at the core rail.
	CoreLeakW float64
	// CoreGatedLeakW is the residual leakage of a power-gated core.
	CoreGatedLeakW float64
	// CoreEPIpJ is the dynamic energy per committed instruction.
	CoreEPIpJ float64
	// CacheLeakW is the chip-wide cache leakage at the cache rail.
	CacheLeakW float64
	// Energies are per-access cache energies at the cache rail.
	Energies CacheEnergies
	// Latencies are per-level access latencies in cache cycles.
	Latencies CacheLatencies
	// ShifterPJ is the per-crossing level-shifter energy (zero when
	// core and cache rails are the same).
	ShifterPJ float64

	// energyLUT and latencyLUT are the Energies/Latencies fields
	// flattened into per-(array, access-kind) tables, built once at
	// construction. Hot loops that charge accesses by index read these
	// through EnergyPJ/LatencyCycles instead of branching over struct
	// field names; the model is immutable, so callers may also copy the
	// scalars out once and keep them in their own state.
	energyLUT  [int(numArrayLevels) * int(numAccessKinds)]float64
	latencyLUT [int(numArrayLevels) * int(numAccessKinds)]int
}

// EnergyPJ returns the per-access dynamic energy of one array and access
// kind from the flattened table.
func (c *Chip) EnergyPJ(l ArrayLevel, k AccessKind) float64 {
	return c.energyLUT[int(l)*int(numAccessKinds)+int(k)]
}

// LatencyCycles returns the array access latency in cache cycles from
// the flattened table. The shared L1I and L1D arrays have identical
// timing (one tech model at one rail), so both map to the L1 latencies.
func (c *Chip) LatencyCycles(l ArrayLevel, k AccessKind) int {
	return c.latencyLUT[int(l)*int(numAccessKinds)+int(k)]
}

// buildLUTs flattens Energies/Latencies into the indexed tables.
func (c *Chip) buildLUTs() {
	set := func(l ArrayLevel, rdE, wrE float64, rdLat, wrLat int) {
		c.energyLUT[int(l)*int(numAccessKinds)+int(ReadAccess)] = rdE
		c.energyLUT[int(l)*int(numAccessKinds)+int(WriteAccess)] = wrE
		c.latencyLUT[int(l)*int(numAccessKinds)+int(ReadAccess)] = rdLat
		c.latencyLUT[int(l)*int(numAccessKinds)+int(WriteAccess)] = wrLat
	}
	e, lt := &c.Energies, &c.Latencies
	set(ArrayL1I, e.L1IRead, e.L1IWrite, lt.L1Read, lt.L1Write)
	set(ArrayL1D, e.L1DRead, e.L1DWrite, lt.L1Read, lt.L1Write)
	set(ArrayL2, e.L2Read, e.L2Write, lt.L2Read, lt.L2Write)
	set(ArrayL3, e.L3Read, e.L3Write, lt.L3Read, lt.L3Write)
}

// NewChip derives the power model for a configuration.
func NewChip(cfg config.Config) *Chip {
	return NewChipWithParams(cfg, DefaultParams())
}

// NewChipWithParams is NewChip with explicit calibration constants.
func NewChipWithParams(cfg config.Config, p Params) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("power: invalid config: %v", err))
	}
	h := cfg.Hierarchy
	l1i := tech.New(cfg.Tech, h.L1I.SizeBytes, cfg.CacheVdd)
	l1d := tech.New(cfg.Tech, h.L1D.SizeBytes, cfg.CacheVdd)
	l2 := tech.New(cfg.Tech, h.L2.SizeBytes, cfg.CacheVdd).Apply(tech.L2Derate)
	l3 := tech.New(cfg.Tech, h.L3.SizeBytes, cfg.CacheVdd).Apply(tech.L3Derate)

	wireL1 := p.WireL1PrivatePJ
	if cfg.L1 == config.SharedL1 {
		wireL1 = p.WireL1SharedPJ
	}
	vs := DynScale(cfg.CacheVdd)

	chip := &Chip{
		Params:         p,
		Config:         cfg,
		CoreLeakW:      p.CoreLeakWatts(cfg.CoreVdd),
		CoreEPIpJ:      p.CoreEPIpJ(cfg.CoreVdd),
		CacheLeakW:     chipCacheLeakW(cfg, l1i, l1d, l2, l3),
		CoreGatedLeakW: p.CoreLeakWatts(cfg.CoreVdd) * p.GatedLeakFraction,
		Energies: CacheEnergies{
			L1IRead:  l1i.ReadEnergyPJ + wireL1*vs,
			L1IWrite: l1i.WriteEnergyPJ + wireL1*vs,
			L1DRead:  l1d.ReadEnergyPJ + wireL1*vs,
			L1DWrite: l1d.WriteEnergyPJ + wireL1*vs,
			L2Read:   l2.ReadEnergyPJ + p.WireL2PJ*vs,
			L2Write:  l2.WriteEnergyPJ + p.WireL2PJ*vs,
			L3Read:   l3.ReadEnergyPJ + p.WireL3PJ*vs,
			L3Write:  l3.WriteEnergyPJ + p.WireL3PJ*vs,
		},
		Latencies: CacheLatencies{
			L1Read:  l1d.ReadLatencyCacheCycles(),
			L1Write: l1d.WriteLatencyCacheCycles(),
			L2Read:  l2.ReadLatencyCacheCycles(),
			L2Write: l2.WriteLatencyCacheCycles(),
			L3Read:  l3.ReadLatencyCacheCycles(),
			L3Write: l3.WriteLatencyCacheCycles(),
		},
	}
	if cfg.CacheVdd != cfg.CoreVdd {
		chip.ShifterPJ = p.LevelShifterPJ
	}
	chip.buildLUTs()
	return chip
}

// chipCacheLeakW sums cache leakage across the chip.
func chipCacheLeakW(cfg config.Config, l1i, l1d, l2, l3 tech.Model) float64 {
	nClusters := float64(cfg.NumClusters())
	l1Count := nClusters
	if cfg.L1 == config.PrivateL1 {
		l1Count = float64(cfg.NumCores)
	}
	return l1Count*(l1i.LeakageWatts()+l1d.LeakageWatts()) +
		nClusters*l2.LeakageWatts() +
		l3.LeakageWatts()
}

// Component identifies an energy sink tracked by the Meter.
type Component int

// Meter components.
const (
	CoreDynamic Component = iota
	CoreLeakage
	CacheDynamic
	CacheLeakage
	Shifter
	numComponents
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case CoreDynamic:
		return "core-dynamic"
	case CoreLeakage:
		return "core-leakage"
	case CacheDynamic:
		return "cache-dynamic"
	case CacheLeakage:
		return "cache-leakage"
	case Shifter:
		return "level-shifter"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Meter accumulates energy per component in picojoules. The convenient
// identity 1 W x 1 ps = 1 pJ makes leakage integration exact:
// AddLeakage(watts, picoseconds) adds watts*picoseconds pJ.
type Meter struct {
	pj [numComponents]float64
}

// AddPJ adds pj picojoules to the component.
func (m *Meter) AddPJ(c Component, pj float64) { m.pj[c] += pj }

// AddLeakage integrates a leakage power over a duration.
func (m *Meter) AddLeakage(c Component, watts float64, ps int64) {
	m.pj[c] += watts * float64(ps)
}

// PJ returns the accumulated energy of one component.
func (m *Meter) PJ(c Component) float64 { return m.pj[c] }

// TotalPJ returns the total accumulated energy.
func (m *Meter) TotalPJ() float64 {
	var sum float64
	for _, v := range m.pj {
		sum += v
	}
	return sum
}

// DynamicPJ returns the dynamic (non-leakage) energy.
func (m *Meter) DynamicPJ() float64 {
	return m.pj[CoreDynamic] + m.pj[CacheDynamic] + m.pj[Shifter]
}

// LeakagePJ returns the leakage energy.
func (m *Meter) LeakagePJ() float64 {
	return m.pj[CoreLeakage] + m.pj[CacheLeakage]
}

// Add merges another meter into this one.
func (m *Meter) Add(other *Meter) {
	for i := range m.pj {
		m.pj[i] += other.pj[i]
	}
}

// Sub returns the difference m - other, component-wise.
func (m *Meter) Sub(other *Meter) Meter {
	var out Meter
	for i := range m.pj {
		out.pj[i] = m.pj[i] - other.pj[i]
	}
	return out
}

// Reset clears the meter.
func (m *Meter) Reset() { m.pj = [numComponents]float64{} }

// MarshalJSON encodes the per-component energies plus the total, using
// the stable snake_case keys shared by -json output and telemetry
// metric snapshots.
func (m Meter) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		CoreDynamicPJ  float64 `json:"core_dynamic_pj"`
		CoreLeakagePJ  float64 `json:"core_leakage_pj"`
		CacheDynamicPJ float64 `json:"cache_dynamic_pj"`
		CacheLeakagePJ float64 `json:"cache_leakage_pj"`
		LevelShifterPJ float64 `json:"level_shifter_pj"`
		TotalPJ        float64 `json:"total_pj"`
	}{
		m.pj[CoreDynamic], m.pj[CoreLeakage],
		m.pj[CacheDynamic], m.pj[CacheLeakage],
		m.pj[Shifter], m.TotalPJ(),
	})
}

// AvgPowerW returns average power over a duration in ps.
func (m *Meter) AvgPowerW(ps int64) float64 {
	if ps <= 0 {
		return 0
	}
	return m.TotalPJ() / float64(ps)
}

// Breakdown is a chip-level steady-state power decomposition (watts), as
// plotted in Figure 1.
type Breakdown struct {
	CoreDynW, CoreLeakW, CacheDynW, CacheLeakW float64
}

// TotalW returns the total power.
func (b Breakdown) TotalW() float64 {
	return b.CoreDynW + b.CoreLeakW + b.CacheDynW + b.CacheLeakW
}

// LeakFraction returns leakage as a fraction of total power.
func (b Breakdown) LeakFraction() float64 {
	t := b.TotalW()
	if t == 0 {
		return 0
	}
	return (b.CoreLeakW + b.CacheLeakW) / t
}

// CacheLeakShareOfLeak returns the cache contribution to leakage power.
func (b Breakdown) CacheLeakShareOfLeak() float64 {
	l := b.CoreLeakW + b.CacheLeakW
	if l == 0 {
		return 0
	}
	return b.CacheLeakW / l
}

// EstimateBreakdown computes the analytic Figure 1 style steady-state
// power decomposition for a configuration, assuming every core commits
// instructions at the given frequency and the model's StaticIPC, with
// the analytic L1 access rates. Lower-level traffic is neglected (it is
// a second-order term at this granularity, as in the paper's figure).
func EstimateBreakdown(cfg config.Config, coreFreqGHz float64) Breakdown {
	return EstimateBreakdownWithParams(cfg, coreFreqGHz, DefaultParams())
}

// EstimateBreakdownWithParams is EstimateBreakdown with explicit
// calibration constants.
func EstimateBreakdownWithParams(cfg config.Config, coreFreqGHz float64, p Params) Breakdown {
	chip := NewChipWithParams(cfg, p)
	instrPerSec := coreFreqGHz * 1e9 * p.StaticIPC * float64(cfg.NumCores)
	accessPerInstr := p.L1IAccessPerInstr + p.L1DAccessPerInstr
	l1AccessEnergy := (chip.Energies.L1IRead*p.L1IAccessPerInstr +
		chip.Energies.L1DRead*p.L1DAccessPerInstr) / accessPerInstr
	return Breakdown{
		CoreDynW:   instrPerSec * chip.CoreEPIpJ * 1e-12,
		CoreLeakW:  float64(cfg.NumCores) * chip.CoreLeakW,
		CacheDynW:  instrPerSec * accessPerInstr * l1AccessEnergy * 1e-12,
		CacheLeakW: chip.CacheLeakW,
	}
}
