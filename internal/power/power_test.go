package power

import (
	"math"
	"testing"
	"testing/quick"

	"respin/internal/config"
)

func TestDynScale(t *testing.T) {
	if got := DynScale(1.0); got != 1.0 {
		t.Errorf("DynScale(1.0) = %v, want 1", got)
	}
	if got := DynScale(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("DynScale(0.5) = %v, want 0.25", got)
	}
}

func TestCoreLeakVoltageScaling(t *testing.T) {
	p := DefaultParams()
	nom := p.CoreLeakWatts(config.NominalVdd)
	if math.Abs(nom-p.CoreLeakWNominal) > 1e-9 {
		t.Errorf("nominal leak = %v, want %v", nom, p.CoreLeakWNominal)
	}
	nt := p.CoreLeakWatts(config.CoreNTVdd)
	// With the DIBL correction, NT leakage is well below the linear
	// V-scaling value but not vanishing.
	if nt >= nom*config.CoreNTVdd {
		t.Errorf("NT leak %v not below linear scaling %v", nt, nom*config.CoreNTVdd)
	}
	if nt <= 0.05*nom {
		t.Errorf("NT leak %v implausibly low", nt)
	}
}

func TestCoreEPIScaling(t *testing.T) {
	p := DefaultParams()
	ratio := p.CoreEPIpJ(config.CoreNTVdd) / p.CoreEPIpJ(config.NominalVdd)
	if math.Abs(ratio-0.16) > 1e-9 {
		t.Errorf("NT/nominal EPI ratio = %v, want 0.16 (V^2)", ratio)
	}
}

func TestNewChipSHSTT(t *testing.T) {
	chip := NewChip(config.New(config.SHSTT, config.Medium))
	// Shared STT L1 read = 1 cache cycle (the paper's headline timing).
	if chip.Latencies.L1Read != 1 {
		t.Errorf("STT shared L1 read = %d cache cycles, want 1", chip.Latencies.L1Read)
	}
	// STT write ~5.2 ns -> well over 10 cache cycles.
	if chip.Latencies.L1Write < 10 {
		t.Errorf("STT L1 write = %d cache cycles, want >= 10", chip.Latencies.L1Write)
	}
	// Sensible level ordering.
	if !(chip.Latencies.L1Read < chip.Latencies.L2Read && chip.Latencies.L2Read < chip.Latencies.L3Read) {
		t.Errorf("latency ordering broken: %+v", chip.Latencies)
	}
	// Dual rail -> level shifting cost present.
	if chip.ShifterPJ <= 0 {
		t.Error("dual-rail config must pay level-shifter energy")
	}
	if chip.CoreGatedLeakW >= chip.CoreLeakW {
		t.Error("gated leakage must be below active leakage")
	}
}

func TestHPChipHasNoShifterCost(t *testing.T) {
	chip := NewChip(config.New(config.HPSRAMCMP, config.Medium))
	if chip.ShifterPJ != 0 {
		t.Errorf("single-rail HP config has shifter energy %v, want 0", chip.ShifterPJ)
	}
}

func TestPrivateSRAML1SingleCoreCycle(t *testing.T) {
	// The PR-SRAM-NT private L1 at 0.65 V reads in 1337 ps, under one
	// 1.6 ns core cycle — the baseline's single-cycle L1 assumption.
	chip := NewChip(config.New(config.PRSRAMNT, config.Medium))
	l1ps := float64(chip.Latencies.L1Read) * config.CachePeriodPS
	if l1ps > 1600 {
		t.Errorf("private SRAM L1 read = %.0f ps, want <= one 1.6ns core cycle", l1ps)
	}
}

func TestCacheLeakOrdering(t *testing.T) {
	stt := NewChip(config.New(config.SHSTT, config.Medium))
	sramNom := NewChip(config.New(config.SHSRAMNom, config.Medium))
	sramNT := NewChip(config.New(config.PRSRAMNT, config.Medium))
	if !(stt.CacheLeakW < sramNT.CacheLeakW && sramNT.CacheLeakW < sramNom.CacheLeakW) {
		t.Errorf("cache leakage ordering broken: STT %.2f, SRAM@0.65 %.2f, SRAM@1.0 %.2f",
			stt.CacheLeakW, sramNT.CacheLeakW, sramNom.CacheLeakW)
	}
	// STT leakage should be several-fold below the nominal SRAM cache.
	if sramNom.CacheLeakW/stt.CacheLeakW < 4 {
		t.Errorf("SRAM@1.0/STT cache leak = %.2f, want >4",
			sramNom.CacheLeakW/stt.CacheLeakW)
	}
}

func TestCacheLeakGrowsWithScale(t *testing.T) {
	var prev float64
	for _, s := range []config.CacheScale{config.Small, config.Medium, config.Large} {
		chip := NewChip(config.New(config.PRSRAMNT, s))
		if chip.CacheLeakW <= prev {
			t.Errorf("%v cache leak %.2f not above previous %.2f", s, chip.CacheLeakW, prev)
		}
		prev = chip.CacheLeakW
	}
}

// TestFigure1NominalShape checks the nominal-voltage operating point:
// dynamic power ~60% of the chip.
func TestFigure1NominalShape(t *testing.T) {
	b := EstimateBreakdown(config.New(config.HPSRAMCMP, config.Medium), 2.5)
	t.Logf("nominal: coreDyn %.1fW coreLeak %.1fW cacheDyn %.1fW cacheLeak %.1fW total %.1fW leakFrac %.2f",
		b.CoreDynW, b.CoreLeakW, b.CacheDynW, b.CacheLeakW, b.TotalW(), b.LeakFraction())
	dyn := 1 - b.LeakFraction()
	if dyn < 0.50 || dyn > 0.72 {
		t.Errorf("nominal dynamic fraction = %.2f, want ~0.60", dyn)
	}
	coreLeakFrac := b.CoreLeakW / b.TotalW()
	if coreLeakFrac < 0.15 || coreLeakFrac > 0.40 {
		t.Errorf("nominal core leak fraction = %.2f, want ~0.26", coreLeakFrac)
	}
}

// TestFigure1NTShape checks the near-threshold operating point: leakage
// ~75% of chip power with caches responsible for about half of it.
func TestFigure1NTShape(t *testing.T) {
	b := EstimateBreakdown(config.New(config.PRSRAMNT, config.Medium), 0.5)
	t.Logf("NT: coreDyn %.2fW coreLeak %.2fW cacheDyn %.2fW cacheLeak %.2fW total %.2fW leakFrac %.2f cacheShare %.2f",
		b.CoreDynW, b.CoreLeakW, b.CacheDynW, b.CacheLeakW, b.TotalW(), b.LeakFraction(), b.CacheLeakShareOfLeak())
	if lf := b.LeakFraction(); lf < 0.65 || lf > 0.88 {
		t.Errorf("NT leak fraction = %.2f, want ~0.75", lf)
	}
	if cs := b.CacheLeakShareOfLeak(); cs < 0.35 || cs > 0.65 {
		t.Errorf("NT cache share of leakage = %.2f, want ~0.5", cs)
	}
}

// TestNTPowerFarBelowNominal: the motivation for NTC — order(s) of
// magnitude power reduction.
func TestNTPowerFarBelowNominal(t *testing.T) {
	nom := EstimateBreakdown(config.New(config.HPSRAMCMP, config.Medium), 2.5)
	nt := EstimateBreakdown(config.New(config.PRSRAMNT, config.Medium), 0.5)
	ratio := nom.TotalW() / nt.TotalW()
	if ratio < 4 {
		t.Errorf("nominal/NT power ratio = %.1f, want >= 4", ratio)
	}
}

func TestMeterAccounting(t *testing.T) {
	var m Meter
	m.AddPJ(CoreDynamic, 10)
	m.AddPJ(CacheDynamic, 5)
	m.AddPJ(Shifter, 1)
	m.AddLeakage(CoreLeakage, 2.0, 3) // 2 W for 3 ps = 6 pJ
	m.AddLeakage(CacheLeakage, 1.0, 4)
	if got := m.PJ(CoreLeakage); got != 6 {
		t.Errorf("leak pJ = %v, want 6", got)
	}
	if got := m.TotalPJ(); got != 26 {
		t.Errorf("total = %v, want 26", got)
	}
	if got := m.DynamicPJ(); got != 16 {
		t.Errorf("dynamic = %v, want 16", got)
	}
	if got := m.LeakagePJ(); got != 10 {
		t.Errorf("leakage = %v, want 10", got)
	}
	if got := m.AvgPowerW(13); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("avg power = %v, want 2", got)
	}
	if got := m.AvgPowerW(0); got != 0 {
		t.Errorf("avg power over 0 ps = %v, want 0", got)
	}

	var m2 Meter
	m2.AddPJ(CoreDynamic, 4)
	m.Add(&m2)
	if got := m.PJ(CoreDynamic); got != 14 {
		t.Errorf("after Add core dyn = %v, want 14", got)
	}
	d := m.Sub(&m2)
	if got := d.PJ(CoreDynamic); got != 10 {
		t.Errorf("Sub core dyn = %v, want 10", got)
	}
	m.Reset()
	if m.TotalPJ() != 0 {
		t.Error("reset meter not empty")
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{
		CoreDynamic:  "core-dynamic",
		CoreLeakage:  "core-leakage",
		CacheDynamic: "cache-dynamic",
		CacheLeakage: "cache-leakage",
		Shifter:      "level-shifter",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if Component(42).String() == "" {
		t.Error("unknown component must stringify")
	}
}

func TestBreakdownHelpers(t *testing.T) {
	var zero Breakdown
	if zero.LeakFraction() != 0 || zero.CacheLeakShareOfLeak() != 0 {
		t.Error("zero breakdown should report zero fractions")
	}
	b := Breakdown{CoreDynW: 1, CoreLeakW: 2, CacheDynW: 3, CacheLeakW: 2}
	if b.TotalW() != 8 {
		t.Errorf("total = %v, want 8", b.TotalW())
	}
	if got := b.LeakFraction(); got != 0.5 {
		t.Errorf("leak fraction = %v, want 0.5", got)
	}
	if got := b.CacheLeakShareOfLeak(); got != 0.5 {
		t.Errorf("cache leak share = %v, want 0.5", got)
	}
}

func TestNewChipPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid config")
		}
	}()
	bad := config.New(config.SHSTT, config.Medium)
	bad.NumCores = -1
	NewChip(bad)
}

// Property: meter totals always equal the sum of the component parts.
func TestMeterTotalsProperty(t *testing.T) {
	f := func(a, b, c, d, e float64) bool {
		abs := func(x float64) float64 { return math.Abs(math.Mod(x, 1e6)) }
		var m Meter
		m.AddPJ(CoreDynamic, abs(a))
		m.AddPJ(CoreLeakage, abs(b))
		m.AddPJ(CacheDynamic, abs(c))
		m.AddPJ(CacheLeakage, abs(d))
		m.AddPJ(Shifter, abs(e))
		sum := abs(a) + abs(b) + abs(c) + abs(d) + abs(e)
		return math.Abs(m.TotalPJ()-sum) < 1e-6 &&
			math.Abs(m.DynamicPJ()+m.LeakagePJ()-sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnergiesPositive ensures every configuration yields positive
// per-access energies with writes >= reads for STT.
func TestEnergiesPositive(t *testing.T) {
	for _, k := range config.AllArchKinds {
		chip := NewChip(config.New(k, config.Medium))
		e := chip.Energies
		for name, v := range map[string]float64{
			"L1IRead": e.L1IRead, "L1IWrite": e.L1IWrite,
			"L1DRead": e.L1DRead, "L1DWrite": e.L1DWrite,
			"L2Read": e.L2Read, "L2Write": e.L2Write,
			"L3Read": e.L3Read, "L3Write": e.L3Write,
		} {
			if v <= 0 {
				t.Errorf("%v: %s = %v, want > 0", k, name, v)
			}
		}
		if chip.Config.Tech == config.STTRAM && e.L1DWrite <= e.L1DRead {
			t.Errorf("%v: STT write energy %v not above read %v", k, e.L1DWrite, e.L1DRead)
		}
	}
}
