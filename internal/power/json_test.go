package power

import (
	"encoding/json"
	"testing"
)

func TestMeterMarshalJSON(t *testing.T) {
	var m Meter
	m.AddPJ(CoreDynamic, 1.5)
	m.AddPJ(CoreLeakage, 2)
	m.AddPJ(CacheDynamic, 3)
	m.AddPJ(CacheLeakage, 4)
	m.AddPJ(Shifter, 0.5)
	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"core_dynamic_pj":1.5,"core_leakage_pj":2,"cache_dynamic_pj":3,` +
		`"cache_leakage_pj":4,"level_shifter_pj":0.5,"total_pj":11}`
	if string(got) != want {
		t.Fatalf("meter JSON = %s, want %s", got, want)
	}
}
